// Command loadgen drives deterministic workloads against a running
// tinygroupsd daemon and records the measured service level — throughput
// and latency quantiles per workload — as a bench-JSON document.
//
// Usage:
//
//	loadgen [-addr URL] [-ops N] [-concurrency C] [-seed S] [-keys K]
//	        [-workloads LIST] [-zipf-skew X] [-write-frac F]
//	        [-advance-every N] [-storm-every N] [-mint-every N] [-bulk-size B]
//	        [-flood-burst B] [-victim KEY] [-near-pool P] [-eclipse-span F]
//	        [-retries R] [-retry-base D] [-request-timeout D] [-out FILE]
//
// The default sweep runs the six canonical workloads (uniform,
// zipf-hotspot, readwrite-mix, churn-heavy, epoch-storm, mint-storm) and
// writes BENCH_service.json. The three adversarial workloads (join-flood,
// targeted-churn, eclipse-storm) are selected explicitly via -workloads —
// `make bench-faults` runs exactly that sweep into BENCH_faults.json — as
// is bulk-read, the batched-lookup workload `make bench-cluster` drives
// through a router to exercise the scatter-gather plane.
// Op streams are pure functions of (seed, index) — see tinygroups/loadgen
// — so two sweeps with equal seeds send byte-identical operation
// sequences regardless of concurrency.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/tinygroups/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags, waits for the daemon, executes the sweep and writes
// the report. It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8477", "base URL of the tinygroupsd daemon")
	ops := fs.Int("ops", 2000, "operations per workload")
	concurrency := fs.Int("concurrency", 4, "closed-loop client count")
	seed := fs.Int64("seed", 1, "workload seed; equal seeds send identical op streams")
	keys := fs.Int("keys", 512, "keyspace size")
	workloads := fs.String("workloads", "uniform,zipf-hotspot,readwrite-mix,churn-heavy,epoch-storm,mint-storm",
		"comma-separated workload names to run, in order")
	zipfSkew := fs.Float64("zipf-skew", 4, "zipf-hotspot skew exponent (1 = uniform)")
	writeFrac := fs.Float64("write-frac", 0.1, "readwrite-mix put share in [0,1]")
	advanceEvery := fs.Int("advance-every", 500, "churn-heavy: one epoch advance per this many ops")
	stormEvery := fs.Int("storm-every", 100, "epoch-storm: one epoch advance per this many ops")
	mintEvery := fs.Int("mint-every", 500, "mint-storm: one epoch advance per this many ops")
	bulkSize := fs.Int("bulk-size", 16, "bulk-read: keys per batched lookup call")
	floodBurst := fs.Int("flood-burst", 16, "join-flood: adversarial mints packed before each advance")
	victim := fs.String("victim", "victim", "targeted-churn: key whose ring range the churn concentrates on")
	nearPool := fs.Int("near-pool", 8, "targeted-churn/eclipse-storm: candidate keys drawn per op (concentration strength)")
	eclipseSpan := fs.Float64("eclipse-span", 0.125, "eclipse-storm: attacked arc as a fraction of the ring")
	retries := fs.Int("retries", 0, "max extra attempts per op on 429/503 (0 = no retries)")
	retryBase := fs.Duration("retry-base", 25*time.Millisecond, "decorrelated-jitter backoff base between retries")
	requestTimeout := fs.Duration("request-timeout", 0, "per-attempt HTTP timeout (0 = target default)")
	out := fs.String("out", "BENCH_service.json", `report file ("-" = stdout)`)
	readyTimeout := fs.Duration("ready-timeout", 30*time.Second, "how long to wait for /healthz")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "loadgen: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *keys < 1 {
		fmt.Fprintf(stderr, "loadgen: -keys must be >= 1 (got %d)\n", *keys)
		return 2
	}

	gens, err := pickWorkloads(workloadParams{
		keys: *keys, zipfSkew: *zipfSkew, writeFrac: *writeFrac,
		advanceEvery: *advanceEvery, stormEvery: *stormEvery, mintEvery: *mintEvery, bulkSize: *bulkSize,
		floodBurst: *floodBurst, victim: *victim, nearPool: *nearPool, eclipseSpan: *eclipseSpan,
	}, *workloads)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 2
	}

	target := loadgen.NewHTTPTarget(*addr,
		loadgen.WithRequestTimeout(*requestTimeout),
		loadgen.WithRetry(*retries, *retryBase),
	)
	if err := target.WaitReady(ctx, *readyTimeout); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}

	cfg := loadgen.Config{Concurrency: *concurrency, Ops: *ops, Seed: *seed}
	rep, err := loadgen.RunSuite(ctx, target, gens, cfg)
	rep.Target = *addr
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}

	if err := writeReport(rep, *out, stdout); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	printSummary(stdout, rep)
	return 0
}

// workloadParams bundles the per-workload tuning flags for pickWorkloads.
type workloadParams struct {
	keys                                int
	zipfSkew, writeFrac, eclipseSpan    float64
	advanceEvery, stormEvery, mintEvery int
	floodBurst, nearPool, bulkSize      int
	victim                              string
}

// pickWorkloads resolves the -workloads list against the built-in
// generators — friendly and adversarial — parameterized by the tuning
// flags.
func pickWorkloads(p workloadParams, list string) ([]loadgen.Generator, error) {
	byName := map[string]loadgen.Generator{}
	var known []string
	for _, g := range []loadgen.Generator{
		loadgen.Uniform(p.keys),
		loadgen.ZipfHotspot(p.keys, p.zipfSkew),
		loadgen.ReadWriteMix(p.keys, p.writeFrac),
		loadgen.ChurnHeavy(p.keys, p.advanceEvery),
		loadgen.EpochStorm(p.keys, p.stormEvery),
		loadgen.MintStorm(p.mintEvery),
		loadgen.BulkRead(p.keys, p.bulkSize),
		loadgen.JoinFlood(p.keys, p.advanceEvery, p.floodBurst),
		loadgen.TargetedChurn(p.keys, p.advanceEvery, p.nearPool, p.victim),
		loadgen.EclipseStorm(p.keys, p.advanceEvery, p.nearPool, p.eclipseSpan),
	} {
		byName[g.Name()] = g
		known = append(known, g.Name())
	}
	var gens []loadgen.Generator
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		g, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (have %s)", name, strings.Join(known, ", "))
		}
		gens = append(gens, g)
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("no workloads selected")
	}
	return gens, nil
}

// writeReport writes the JSON document to the -out destination.
func writeReport(rep loadgen.Report, out string, stdout io.Writer) error {
	if out == "-" {
		return rep.WriteJSON(stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printSummary renders the human-readable sweep table.
func printSummary(w io.Writer, rep loadgen.Report) {
	tab := metrics.Table{Header: []string{
		"workload", "ops", "ok", "succ", "unreach", "notfound", "err", "retries", "ops/s", "p50 ms", "p99 ms", "read p99", "mint p99",
	}}
	for _, r := range rep.Workloads {
		readP99, mintP99 := "-", "-"
		if r.ReadOps > 0 {
			readP99 = fmt.Sprintf("%.2f", r.ReadP99Millis)
		}
		if r.MintOps > 0 {
			mintP99 = fmt.Sprintf("%.2f", r.MintP99Millis)
		}
		tab.Append(r.Workload,
			fmt.Sprintf("%d", r.Ops), fmt.Sprintf("%d", r.OK),
			fmt.Sprintf("%.3f", r.SuccessRate),
			fmt.Sprintf("%d", r.Unreachable), fmt.Sprintf("%d", r.NotFound),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2f", r.P50Millis), fmt.Sprintf("%.2f", r.P99Millis),
			readP99, mintP99,
		)
	}
	fmt.Fprintf(w, "%s(%d clients, seed %d)\n", tab.String(), rep.Concurrency, rep.Seed)
}
