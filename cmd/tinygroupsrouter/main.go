// Command tinygroupsrouter fronts a cluster of tinygroupsd shards: it
// maps each key's ring point to the shard owning that contiguous range,
// forwards keyed requests, scatter-gathers batches, aggregates /healthz
// and /metrics, and drives the coordinated two-phase epoch advance
// (build everywhere, then flip everywhere — or abort everywhere).
//
// Usage:
//
//	tinygroupsrouter -shards URL,URL,... [-addr HOST:PORT]
//	                 [-epoch-interval D] [-request-timeout D]
//	                 [-advance-timeout D] [-version]
//
// The i-th URL must be the daemon started with -shard-index i; the
// cluster size is len(-shards). Run exactly one advance driver per
// cluster: either this router's -epoch-interval ticker or explicit
// POSTs to its /v1/epoch/advance — never the shards' own tickers.
//
// SIGINT/SIGTERM drain in-flight requests and let a mid-flight
// coordinated advance finish its phase before exiting. A clean drain
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/tinygroups/cluster"
)

// shutdownTimeout bounds the drain on SIGTERM, mirroring tinygroupsd.
const shutdownTimeout = 30 * time.Second

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stderr))
}

// run parses flags and serves until ctx cancels (the signal path) or the
// listener fails, returning the process exit code.
func run(ctx context.Context, args []string, stderr io.Writer) int {
	lg := log.New(stderr, "", 0)
	fs := flag.NewFlagSet("tinygroupsrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8478", "listen address")
	shards := fs.String("shards", "", "comma-separated shard base URLs in shard order (required)")
	epochEvery := fs.Duration("epoch-interval", 0, "drive a coordinated two-phase epoch advance on this period (0 = only via /v1/epoch/advance)")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request bound on forwarded shard calls")
	advTimeout := fs.Duration("advance-timeout", 60*time.Second, "per-shard bound on each phase of a coordinated advance")
	showVersion := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		lg.Printf("tinygroupsrouter %s", buildinfo.String())
		return 0
	}
	if len(fs.Args()) != 0 {
		lg.Printf("tinygroupsrouter: unexpected arguments %v", fs.Args())
		return 2
	}
	urls := splitShards(*shards)
	if len(urls) == 0 {
		lg.Printf("tinygroupsrouter: -shards is required")
		return 2
	}

	rt, err := cluster.NewRouter(cluster.Config{
		Shards:         urls,
		RequestTimeout: *reqTimeout,
		AdvanceTimeout: *advTimeout,
		Version:        buildinfo.String(),
		Logf:           lg.Printf,
	})
	if err != nil {
		lg.Printf("tinygroupsrouter: %v", err)
		return 2
	}
	lg.Printf("tinygroupsrouter %s listening on %s (%d shards, epoch-interval=%s)",
		buildinfo.String(), *addr, rt.Shards(), *epochEvery)

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	// The router's ticker is the cluster's one advance driver.
	var tickerDone chan struct{}
	tctx, tcancel := context.WithCancel(context.Background())
	defer tcancel()
	if *epochEvery > 0 {
		tickerDone = make(chan struct{})
		go func() {
			defer close(tickerDone)
			tk := time.NewTicker(*epochEvery)
			defer tk.Stop()
			for {
				select {
				case <-tctx.Done():
					return
				case <-tk.C:
					if st, err := rt.Advance(tctx); err != nil {
						lg.Printf("tinygroupsrouter: coordinated advance: %v", err)
					} else {
						lg.Printf("tinygroupsrouter: advanced cluster to epoch %d", st.Epoch)
					}
				}
			}
		}()
	}

	select {
	case err := <-errc:
		lg.Printf("tinygroupsrouter: serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	lg.Printf("tinygroupsrouter: signal received, draining")
	tcancel()
	if tickerDone != nil {
		<-tickerDone
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		lg.Printf("tinygroupsrouter: shutdown: %v", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		lg.Printf("tinygroupsrouter: serve: %v", err)
		return 1
	}
	lg.Printf("tinygroupsrouter: clean exit")
	return 0
}

// splitShards parses the -shards list, trimming blanks so a trailing
// comma is harmless.
func splitShards(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}
