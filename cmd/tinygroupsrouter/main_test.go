package main

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestSplitShards(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"http://a:1", []string{"http://a:1"}},
		{"http://a:1,http://b:2,", []string{"http://a:1", "http://b:2"}},
		{" http://a:1/ , http://b:2 ", []string{"http://a:1", "http://b:2"}},
	}
	for _, c := range cases {
		if got := splitShards(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitShards(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"missing shards", nil},
		{"positional args", []string{"-shards", "http://a:1", "extra"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			if code := run(context.Background(), c.args, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
		})
	}
}

func TestRunVersion(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "tinygroupsrouter ") {
		t.Fatalf("version output = %q", stderr.String())
	}
}

func TestRunBadListenAddr(t *testing.T) {
	var stderr bytes.Buffer
	code := run(context.Background(), []string{"-shards", "http://127.0.0.1:1", "-addr", "256.256.256.256:0"}, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}

// TestRunCleanShutdown drives the router's lifecycle: start, serve,
// signal (context cancellation — the SIGTERM path), drain, exit 0. The
// configured shard does not exist; the router is stateless, so it still
// boots and drains cleanly.
func TestRunCleanShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-shards", "http://127.0.0.1:1", "-addr", "127.0.0.1:0"}, &stderr)
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("router did not exit within 30s of the signal")
	}
	if !strings.Contains(stderr.String(), "clean exit") {
		t.Fatalf("stderr missing clean exit: %s", stderr.String())
	}
}
