package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunWritesReport runs a miniature sweep end to end and checks the
// report's invariants: positive rates, a counter-mode stream at least as
// fast as the legacy one, and mint quantiles in order.
func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pow.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-out", out, "-attempts", "4096", "-solves", "4", "-mints", "4", "-mint-work", "64"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Hash.LegacyHashesPerSec <= 0 || rep.Hash.CounterHashesPerSec <= 0 {
		t.Fatalf("non-positive hash rates: %+v", rep.Hash)
	}
	if rep.Hash.Speedup < 1 {
		t.Errorf("counter-mode slower than legacy stream: speedup %.2f", rep.Hash.Speedup)
	}
	if rep.Solve.Solves != 4 || rep.Solve.Attempts < 4 {
		t.Errorf("solve block: %+v", rep.Solve)
	}
	if rep.Mint.Count != 4 || rep.Mint.P99Ms < rep.Mint.P50Ms || rep.Mint.Attempts < 4 {
		t.Errorf("mint block: %+v", rep.Mint)
	}
	if rep.Baseline.BeforeNsOp != baselineSolveShardedNs || rep.Baseline.AfterNsOp <= 0 {
		t.Errorf("baseline block: %+v", rep.Baseline)
	}
	if !strings.Contains(stdout.String(), "hashes/s") {
		t.Errorf("summary line missing: %q", stdout.String())
	}
}

// TestRunBadFlags covers flag-parse and extra-argument failures.
func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: run = %d, want 2", code)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"extra"}, &stdout, &stderr); code != 2 {
		t.Errorf("extra arg: run = %d, want 2", code)
	}
}
