// Command benchpow measures the PoW mining engine end to end and records
// the result as BENCH_pow.json — the mint-path sibling of BENCH_hotpaths
// and BENCH_service.
//
// Usage:
//
//	benchpow [-out FILE] [-attempts N] [-solves N] [-mints N] [-mint-work W]
//
// Three layers are measured:
//
//   - raw candidate throughput: the legacy derive-hash-per-attempt stream
//     (reconstructed locally — one σ derivation plus one g evaluation per
//     attempt, the pre-PR cost model) against the counter-mode engine,
//     which amortizes the derivation over a whole chunk;
//   - solving: SolveSharded at one worker against a reference difficulty,
//     reported as solves/sec and hashes/sec;
//   - serving: in-process System.Mint latency quantiles at the benchmark
//     difficulty — what a /v1/mint caller experiences minus HTTP.
//
// The baseline block pins the pre-PR BenchmarkPoWSolveSharded reading next
// to the same workload re-measured live, so the engine's speedup stays an
// explicit, committed number.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/hashes"
	"repro/internal/metrics"
	"repro/internal/pow"
	"repro/internal/ring"
	"repro/tinygroups"
)

// baselineSolveShardedNs is the pre-PR BenchmarkPoWSolveSharded reading
// (fixed-stride shards, derive-hash per attempt) on the reference machine,
// committed when the mining engine landed. The live "after" measurement
// reruns the identical workload.
const baselineSolveShardedNs = 252828

// report is the BENCH_pow.json document.
type report struct {
	Hash struct {
		LegacyNsPerAttempt  float64 `json:"legacy_ns_per_attempt"`
		CounterNsPerAttempt float64 `json:"counter_ns_per_attempt"`
		LegacyHashesPerSec  float64 `json:"legacy_hashes_per_sec"`
		CounterHashesPerSec float64 `json:"counter_hashes_per_sec"`
		Speedup             float64 `json:"speedup"`
	} `json:"hash"`
	Solve struct {
		Work         float64 `json:"work"`
		Solves       int     `json:"solves"`
		Attempts     int64   `json:"attempts"`
		Seconds      float64 `json:"seconds"`
		SolvesPerSec float64 `json:"solves_per_sec"`
		HashesPerSec float64 `json:"hashes_per_sec"`
	} `json:"solve"`
	Mint struct {
		Count    int     `json:"count"`
		Work     float64 `json:"work"`
		P50Ms    float64 `json:"p50_ms"`
		P99Ms    float64 `json:"p99_ms"`
		MeanMs   float64 `json:"mean_ms"`
		PerSec   float64 `json:"mints_per_sec"`
		Attempts int64   `json:"attempts"`
	} `json:"mint"`
	Baseline struct {
		Benchmark  string  `json:"benchmark"`
		BeforeNsOp float64 `json:"before_ns_per_op"`
		AfterNsOp  float64 `json:"after_ns_per_op"`
		Speedup    float64 `json:"speedup"`
	} `json:"baseline"`
}

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the measurement sweep and writes the report; it returns the
// process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchpow", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH_pow.json", `report file ("-" = stdout)`)
	attempts := fs.Int("attempts", 1<<19, "candidate hashes per raw-throughput pass")
	solves := fs.Int("solves", 64, "solve count for the solves/sec measurement")
	mints := fs.Int("mints", 48, "mint count for the serving-latency measurement")
	mintWork := fs.Float64("mint-work", 1<<12, "mint difficulty in expected attempts per ID")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "benchpow: unexpected arguments %v\n", fs.Args())
		return 2
	}

	var rep report
	measureHash(&rep, *attempts)
	measureSolve(&rep, *solves)
	rep.Baseline.Benchmark = "BenchmarkPoWSolveSharded"
	rep.Baseline.BeforeNsOp = baselineSolveShardedNs
	rep.Baseline.AfterNsOp = measureBaselineWorkload()
	rep.Baseline.Speedup = rep.Baseline.BeforeNsOp / rep.Baseline.AfterNsOp
	if err := measureMint(ctx, &rep, *mints, *mintWork); err != nil {
		fmt.Fprintf(stderr, "benchpow: %v\n", err)
		return 1
	}

	if err := writeReport(rep, *out, stdout); err != nil {
		fmt.Fprintf(stderr, "benchpow: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "hash: %.0f → %.0f hashes/s (%.2fx)   solve: %.1f solves/s   mint p99: %.2f ms   baseline: %.2fx\n",
		rep.Hash.LegacyHashesPerSec, rep.Hash.CounterHashesPerSec, rep.Hash.Speedup,
		rep.Solve.SolvesPerSec, rep.Mint.P99Ms, rep.Baseline.Speedup)
	return 0
}

// measureHash times the two candidate streams over an unsolvable puzzle
// (τ=0), so every attempt runs the full per-candidate cost.
func measureHash(rep *report, attempts int) {
	const stringLen = 32
	r := pow.EpochString(1, 0, stringLen)
	p := pow.Params{Tau: 0, StringLen: stringLen}

	// Legacy stream: the pre-PR cost model — one full σ derivation through
	// the "sigma" oracle per attempt, then g(σ⊕r).
	sigmaOracle := hashes.NewFunc("sigma")
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[:8], 1)
	xored := make([]byte, stringLen)
	start := time.Now()
	for a := int64(1); a <= int64(attempts); a++ {
		binary.BigEndian.PutUint64(buf[8:16], uint64(a))
		binary.BigEndian.PutUint64(buf[16:], 0)
		d := sigmaOracle.Bytes(buf[:])
		hashes.XORInto(xored, d[:], r)
		if hashes.G.Point(xored) <= p.Tau {
			panic("benchpow: τ=0 solved")
		}
	}
	legacy := time.Since(start)

	// Counter-mode stream: the live engine over the same attempt budget.
	start = time.Now()
	if _, ok := pow.SolveSharded(r, p, 1, attempts, 1); ok {
		panic("benchpow: τ=0 solved")
	}
	counter := time.Since(start)

	rep.Hash.LegacyNsPerAttempt = float64(legacy.Nanoseconds()) / float64(attempts)
	rep.Hash.CounterNsPerAttempt = float64(counter.Nanoseconds()) / float64(attempts)
	rep.Hash.LegacyHashesPerSec = float64(attempts) / legacy.Seconds()
	rep.Hash.CounterHashesPerSec = float64(attempts) / counter.Seconds()
	rep.Hash.Speedup = rep.Hash.CounterHashesPerSec / rep.Hash.LegacyHashesPerSec
}

// measureSolve runs full solves at the reference difficulty (2^10 expected
// attempts, the root BenchmarkSolveSharded shape) at one worker.
func measureSolve(rep *report, solves int) {
	p := pow.Params{Tau: ring.Point(^uint64(0) >> 10), StringLen: 32}
	r := pow.EpochString(1, 0, 32)
	var attempts int64
	start := time.Now()
	for i := 0; i < solves; i++ {
		sol, ok := pow.SolveSharded(r, p, int64(i+1), 1<<20, 1)
		if !ok {
			panic("benchpow: reference solve failed")
		}
		attempts += int64(sol.Attempts)
	}
	elapsed := time.Since(start)
	rep.Solve.Work = 1 << 10
	rep.Solve.Solves = solves
	rep.Solve.Attempts = attempts
	rep.Solve.Seconds = elapsed.Seconds()
	rep.Solve.SolvesPerSec = float64(solves) / elapsed.Seconds()
	rep.Solve.HashesPerSec = float64(attempts) / elapsed.Seconds()
}

// measureBaselineWorkload reruns the exact pre-PR BenchmarkPoWSolveSharded
// body (default worker pool) and returns mean ns/op.
func measureBaselineWorkload() float64 {
	p := pow.Params{Tau: ring.Point(^uint64(0) >> 10), StringLen: 32}
	r := pow.EpochString(1, 0, 32)
	const iters = 256
	start := time.Now()
	for i := 0; i < iters; i++ {
		pow.SolveSharded(r, p, int64(i+1), 1<<20, 0)
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// measureMint times System.Mint end to end — snapshot load, solve, result
// assembly — for distinct miner identities.
func measureMint(ctx context.Context, rep *report, mints int, work float64) error {
	sys, err := tinygroups.New(256, tinygroups.WithSeed(1), tinygroups.WithMintWork(work))
	if err != nil {
		return err
	}
	defer sys.Close()
	var lat metrics.Summary
	var attempts int64
	start := time.Now()
	for i := 0; i < mints; i++ {
		t0 := time.Now()
		res, err := sys.Mint(ctx, fmt.Sprintf("bench-miner-%d", i))
		if err != nil {
			return err
		}
		lat.Add(float64(time.Since(t0)) / float64(time.Millisecond))
		attempts += int64(res.Attempts)
	}
	elapsed := time.Since(start)
	rep.Mint.Count = mints
	rep.Mint.Work = work
	rep.Mint.P50Ms = lat.Quantile(0.50)
	rep.Mint.P99Ms = lat.Quantile(0.99)
	rep.Mint.MeanMs = lat.Mean()
	rep.Mint.PerSec = float64(mints) / elapsed.Seconds()
	rep.Mint.Attempts = attempts
	return nil
}

// writeReport writes the JSON document to the -out destination.
func writeReport(rep report, out string, stdout io.Writer) error {
	w := stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
