// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON document on stdout, so `make bench-json` can
// record the repository's performance trajectory (BENCH_*.json) without any
// dependency beyond the standard library.
//
// Usage:
//
//	go test -run=NONE -bench=... -benchmem . | go run ./cmd/benchjson > BENCH_hotpaths.json
//
// Standard metrics (ns/op, B/op, allocs/op) get dedicated fields; any
// custom b.ReportMetric units are preserved under "metrics". Non-benchmark
// lines (goos/goarch/pkg/cpu headers) are folded into the environment
// block; everything else is ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// trimCPUSuffix drops the -GOMAXPROCS suffix Go appends to benchmark names
// (absent when GOMAXPROCS is 1), so records compare across machines.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseLine parses one `BenchmarkX  N  v unit  v unit ...` result line,
// returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimCPUSuffix(f[0]), Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

func main() {
	var rep Report
	rep.Benchmarks = []Benchmark{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read stdin:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}
