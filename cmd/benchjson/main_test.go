package main

import "testing"

func TestParseLineStandardMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkSimRound-8   \t   64126\t      5695 ns/op\t       1 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "BenchmarkSimRound" {
		t.Errorf("name = %q, want BenchmarkSimRound", b.Name)
	}
	if b.Iterations != 64126 || b.NsPerOp != 5695 {
		t.Errorf("iters/ns = %d/%v", b.Iterations, b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1 {
		t.Errorf("B/op = %v, want 1", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
		t.Errorf("allocs/op = %v, want 0", b.AllocsPerOp)
	}
}

func TestParseLineNoCPUSuffixAndCustomMetric(t *testing.T) {
	b, ok := parseLine("BenchmarkE1StaticSearch \t 12\t 9000 ns/op\t 0.031 searchFail@n1k,b05")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "BenchmarkE1StaticSearch" {
		t.Errorf("name = %q", b.Name)
	}
	if got := b.Metrics["searchFail@n1k,b05"]; got != 0.031 {
		t.Errorf("custom metric = %v, want 0.031", got)
	}
}

func TestParseLineRejectsNonBenchmarkLines(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t3.683s",
		"--- BENCH: BenchmarkFoo",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q wrongly parsed as benchmark", line)
		}
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":    "BenchmarkFoo",
		"BenchmarkFoo-16":   "BenchmarkFoo",
		"BenchmarkFoo":      "BenchmarkFoo",
		"BenchmarkFoo-bar":  "BenchmarkFoo-bar",
		"BenchmarkFoo-2-16": "BenchmarkFoo-2",
	}
	for in, want := range cases {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
